"""Graph analytics expressed in the Big Data algebra.

The paper's "control iteration" argument: graph analytics is repeated
execution of a data-parallel step until convergence, so the algebra needs an
``Iterate`` operator — otherwise every iteration round-trips through the
client.  These builders produce exactly such trees (tagged with their
intent), and :func:`match_pagerank` is the graph server's recognizer that
lets it swap in its native CSR implementation.

Conventions: a vertex table has schema ``(v: INT64 dimension)``; an edge
table has ``(src: INT64, dst: INT64)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import algebra as A
from ..core.errors import AlgebraError
from ..core.expressions import BinOp, If, IsNull, Lit, col, if_, lit
from ..core.intents import INTENT_PAGERANK
from ..core.schema import Attribute, Schema
from ..core.types import DType

UNREACHABLE = 2**31  # "infinity" level for BFS / components

VERTEX_SCHEMA = Schema([Attribute("v", DType.INT64, dimension=True)])
EDGE_SCHEMA = Schema([
    Attribute("src", DType.INT64), Attribute("dst", DType.INT64),
])

RANK_STATE = Schema([
    Attribute("v", DType.INT64, dimension=True),
    Attribute("rank", DType.FLOAT64),
])

LEVEL_STATE = Schema([
    Attribute("v", DType.INT64, dimension=True),
    Attribute("level", DType.INT64),
])

LABEL_STATE = Schema([
    Attribute("v", DType.INT64, dimension=True),
    Attribute("label", DType.INT64),
])


def _check_schemas(vertices: A.Node, edges: A.Node) -> None:
    if vertices.schema.names != ("v",):
        raise AlgebraError(
            f"vertex input must have schema (v); got {list(vertices.schema.names)}"
        )
    if not {"src", "dst"} <= set(edges.schema.names):
        raise AlgebraError(
            f"edge input needs src and dst; got {list(edges.schema.names)}"
        )


def pagerank(
    vertices: A.Node,
    edges: A.Node,
    num_vertices: int,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iter: int = 100,
) -> A.Iterate:
    """PageRank as an algebra ``Iterate`` tree, tagged ``intent="pagerank"``.

    Each round: every vertex sends ``rank / out_degree`` along its edges,
    incoming contributions are summed per vertex, and the new rank is
    ``(1-d)/n + d * inflow``.  Dangling vertices leak mass (matching the
    native implementation in :mod:`repro.graph.algorithms`).
    """
    _check_schemas(vertices, edges)
    if num_vertices < 1:
        raise AlgebraError("num_vertices must be positive")
    teleport = (1.0 - damping) / num_vertices

    init = A.Extend(vertices, ("rank",), (lit(1.0 / num_vertices),))

    degrees = A.Aggregate(edges, ("src",), (A.AggSpec("outdeg", "count"),))
    degrees = A.Rename(degrees, (("src", "dsrc"),))
    edges_deg = A.Join(edges, degrees, (("src", "dsrc"),))

    state = A.LoopVar("state", RANK_STATE)
    outflow = A.Join(state, edges_deg, (("v", "src"),))
    contrib = A.Extend(
        outflow, ("share",), (col("rank") / col("outdeg"),)
    )
    inflow = A.Aggregate(
        contrib, ("dst",), (A.AggSpec("inflow", "sum", col("share")),)
    )
    landed = A.Join(vertices, inflow, (("v", "dst"),), "left")
    updated = A.Extend(
        landed,
        ("rank",),
        (lit(teleport)
         + lit(damping) * if_(col("inflow").is_null(), lit(0.0), col("inflow")),),
    )
    body = A.Project(updated, ("v", "rank"))
    return A.Iterate(
        init, body, var="state",
        stop=A.Convergence("rank", tolerance, "linf"),
        max_iter=max_iter,
        intent=INTENT_PAGERANK,
    )


def bfs_levels(
    vertices: A.Node,
    edges: A.Node,
    source: int,
    *,
    max_iter: int = 10_000,
) -> A.Iterate:
    """BFS levels as an algebra ``Iterate``; UNREACHABLE marks unvisited."""
    _check_schemas(vertices, edges)
    init = A.Extend(
        vertices, ("level",),
        (if_(col("v") == source, lit(0), lit(UNREACHABLE)),),
    )
    state = A.LoopVar("state", LEVEL_STATE)
    relax = A.Join(state, edges, (("v", "src"),))
    candidate = A.Extend(relax, ("cand",), (col("level") + 1,))
    best_in = A.Aggregate(
        candidate, ("dst",), (A.AggSpec("m", "min", col("cand")),)
    )
    merged = A.Join(state, best_in, (("v", "dst"),), "left")
    # note: nested conditionals, not `is_null(m) | (level <= m)` — the
    # algebra's null rule makes `true | null` null, which would leak nulls
    updated = A.Extend(
        merged,
        ("new_level",),
        (if_(IsNull(col("m")), col("level"),
             if_(col("level") <= col("m"), col("level"), col("m"))),),
    )
    body = A.Rename(A.Project(updated, ("v", "new_level")),
                    (("new_level", "level"),))
    return A.Iterate(
        init, body, var="state",
        stop=A.Convergence("level", 0.5, "linf"),  # integer fixpoint
        max_iter=max_iter,
        intent="bfs",
    )


def connected_components(
    vertices: A.Node,
    edges: A.Node,
    *,
    max_iter: int = 10_000,
) -> A.Iterate:
    """Weakly-connected component labels (min-label propagation)."""
    _check_schemas(vertices, edges)
    both_ways = A.Union(
        A.Project(edges, ("src", "dst")),
        A.Rename(
            A.Project(
                A.Rename(edges, (("src", "a"), ("dst", "b"))), ("b", "a")
            ),
            (("b", "src"), ("a", "dst")),
        ),
    )
    init = A.Extend(vertices, ("label",), (col("v"),))
    state = A.LoopVar("state", LABEL_STATE)
    relax = A.Join(state, both_ways, (("v", "src"),))
    best_in = A.Aggregate(
        relax, ("dst",), (A.AggSpec("m", "min", col("label")),)
    )
    merged = A.Join(state, best_in, (("v", "dst"),), "left")
    updated = A.Extend(
        merged,
        ("new_label",),
        (if_(IsNull(col("m")), col("label"),
             if_(col("label") <= col("m"), col("label"), col("m"))),),
    )
    body = A.Rename(A.Project(updated, ("v", "new_label")),
                    (("new_label", "label"),))
    return A.Iterate(
        init, body, var="state",
        stop=A.Convergence("label", 0.5, "linf"),
        max_iter=max_iter,
        intent="connected_components",
    )


# --------------------------------------------------------------------------
# Native-path recognition
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PageRankSpec:
    """Parameters extracted from a recognized PageRank tree."""

    vertices: A.Node
    edges: A.Node
    damping: float
    teleport: float
    tolerance: float
    max_iter: int


def _strip_projects(node: A.Node) -> A.Node:
    """Skip column-narrowing veneers the optimizer may have inserted."""
    while isinstance(node, A.Project):
        node = node.child
    return node


def match_pagerank(node: A.Node) -> PageRankSpec | None:
    """Recognize the canonical :func:`pagerank` tree and extract parameters.

    The graph provider calls this to swap in its CSR implementation; any
    mismatch returns None and the generic iterative executor runs instead —
    recognition is an optimization, never a semantic requirement.  The
    matcher tolerates ``Project`` veneers so trees survive the logical
    optimizer's projection pruning.
    """
    if not isinstance(node, A.Iterate) or node.intent != INTENT_PAGERANK:
        return None
    if node.stop.value_attr != "rank":
        return None
    if node.body.schema.names != ("v", "rank"):
        return None
    updated = _strip_projects(node.body)
    if not isinstance(updated, A.Extend) or "rank" not in updated.names:
        return None
    expr = updated.exprs[updated.names.index("rank")]
    # shape: teleport + damping * if(inflow is null, 0, inflow)
    if not (isinstance(expr, BinOp) and expr.op == "+"
            and isinstance(expr.left, Lit)
            and isinstance(expr.right, BinOp) and expr.right.op == "*"
            and isinstance(expr.right.left, Lit)
            and isinstance(expr.right.right, If)):
        return None
    teleport = float(expr.left.value)
    damping = float(expr.right.left.value)
    landed = _strip_projects(updated.child)
    if not isinstance(landed, A.Join) or landed.how != "left":
        return None
    vertices = landed.left
    inflow = _strip_projects(landed.right)
    if not isinstance(inflow, A.Aggregate):
        return None
    contrib = _strip_projects(inflow.child)
    if not isinstance(contrib, A.Extend):
        return None
    outflow = _strip_projects(contrib.child)
    if not isinstance(outflow, A.Join):
        return None
    edges_deg = _strip_projects(outflow.right)
    if not isinstance(edges_deg, A.Join):
        return None
    edges = edges_deg.left
    if not {"src", "dst"} <= set(edges.schema.names):
        return None
    if "v" not in vertices.schema.names:
        return None
    return PageRankSpec(
        vertices=vertices,
        edges=edges,
        damping=damping,
        teleport=teleport,
        tolerance=node.stop.tolerance,
        max_iter=node.max_iter,
    )

"""Subpackage of repro."""

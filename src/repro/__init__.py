"""repro — a Big Data algebra framework.

A from-scratch implementation of the multi-server Big Data framework
proposed in *Desiderata for a Big Data Language* (David Maier, CIDR 2015):
a LINQ-like architecture where clients build queries as expression trees
over an algebra that fuses tabular and array data models, and a federation
layer routes (pieces of) those trees to specialized back-end servers —
relational, array, linear-algebra and graph engines, all included here —
with intermediate results passed directly between servers.

Quickstart::

    from repro import BigDataContext, col
    from repro.providers import RelationalProvider

    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load_rows("orders", schema, rows, on="sql")
    big = ctx.table("orders").where(col("amount") > 100).collect()

See DESIGN.md for the architecture and EXPERIMENTS.md for the experiment
suite that operationalizes the paper's four desiderata.
"""

from .client.collection import Collection
from .client.context import BigDataContext
from .client.query import Query
from .core import algebra
from .core.algebra import AggSpec, Convergence
from .core.expressions import col, func, if_, lit
from .core.rewriter import RewriteOptions, Rewriter
from .core.schema import Attribute, Schema
from .core.types import DType
from .storage.table import ColumnTable

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "Attribute",
    "BigDataContext",
    "Collection",
    "ColumnTable",
    "Convergence",
    "DType",
    "Query",
    "RewriteOptions",
    "Rewriter",
    "Schema",
    "algebra",
    "col",
    "func",
    "if_",
    "lit",
]

"""Relational provider: the SQLServer-like back end.

Wraps :class:`repro.relational.engine.RelationalEngine` in the provider
protocol.  Covers the full relational algebra plus every dimension-aware
operator with a natural relational reading (slice, regrid, reduce,
cell-join, and matmul via join-aggregate).  It cannot execute ``Window`` —
a deliberate coverage gap that the federation planner must route around,
exercising desideratum 1.
"""

from __future__ import annotations

from ..core import algebra as A
from ..relational.catalog import RelationalCatalog
from ..relational.engine import EngineOptions, RelationalEngine
from ..storage.table import ColumnTable
from .base import Provider, capability_names


class RelationalProvider(Provider):
    """Columnar relational server with a local catalog and indexes."""

    capabilities = capability_names(A.ALL_OPERATORS) - {"Window"}

    def __init__(
        self,
        name: str,
        options: EngineOptions | None = None,
        chunk_rows: int | None = None,
    ):
        super().__init__(name)
        if chunk_rows is None:
            self.catalog = RelationalCatalog()
        else:
            self.catalog = RelationalCatalog(chunk_rows=chunk_rows)
        self.engine = RelationalEngine(options, self.catalog)

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        # the catalog chunks + dictionary-encodes the stored table; keep the
        # provider's copy identical so scans and index probes agree
        entry = self.catalog.register(name, table)
        super().register_dataset(name, entry.table)

    def table_stats(self, name: str):
        # serve the catalog's precomputed dictionary/zone-map statistics
        # instead of the base class's full-table derivation
        return self.catalog.table_stats(name)

    def create_index(self, dataset: str, column: str, kind: str = "hash") -> None:
        """Build a secondary index over a stored dataset column.

        ``kind`` is "hash" (equality probes) or "sorted" (range lookups).
        """
        if kind == "hash":
            self.catalog.create_hash_index(dataset, column)
        elif kind == "sorted":
            self.catalog.create_sorted_index(dataset, column)
        else:
            raise ValueError(f"unknown index kind {kind!r}; use hash or sorted")

    def cost_factor(self, node: A.Node) -> float:
        # matmul runs as join+aggregate here: correct, but far from native
        if isinstance(node, A.MatMul):
            return 25.0
        if isinstance(node, (A.Regrid, A.CellJoin)):
            return 2.0
        return 1.0

    def lower(self, tree: A.Node):
        """The cached physical plan the engine would execute ``tree`` with."""
        return self.engine.plan_for(tree)

    def _perf_extra(self) -> dict[str, object]:
        """Engine counters: fused pipelines, index paths, the process-wide
        compiled-expression cache, and cumulative per-stage seconds."""
        from ..exec.compile import expr_cache_stats

        return {
            "op_seconds": dict(self.engine.op_seconds),
            "fused_runs": self.engine.fused_runs,
            "index_hits": self.engine.index_hits,
            "expr_cache": expr_cache_stats(),
        }

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        def resolve(dataset: str) -> ColumnTable:
            if dataset in inputs:
                return inputs[dataset]
            return self.dataset(dataset)

        result = self.engine.run(tree, resolve)
        # the executor hands back this query's stage timings; no diffing
        self._record_engine_stages(self.engine.last_stage_seconds)
        return result

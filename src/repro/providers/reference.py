"""The reference interpreter: a provider that executes *every* operator.

This is the semantics oracle of the whole project.  It interprets algebra
trees row-at-a-time over plain Python values with no indexes, no
vectorization and no cleverness, so its behaviour is easy to audit.  Every
engine, rewrite rule and frontend is tested for agreement with it.

It also plays the "naive middle tier" role in several experiments: the
portability bench (E6) uses it as the lowest-common-denominator server, and
the coverage bench (E1) uses it as the 100%-coverage baseline.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core import algebra as A
from ..core.aggfuncs import apply_agg
from ..core.errors import ConvergenceError, ExecutionError
from ..core.expressions import eval_row
from ..core.schema import Schema
from ..core.visitors import substitute_loop_var
from ..storage.table import ColumnTable
from .base import Provider, capability_names

Row = dict[str, Any]


class ReferenceProvider(Provider):
    """Naive row-at-a-time interpreter covering the entire algebra."""

    capabilities = capability_names(A.ALL_OPERATORS)

    def cost_factor(self, node: A.Node) -> float:
        return 40.0  # covers everything, fast at nothing

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        rows = self._eval(tree, inputs)
        return ColumnTable.from_dicts(tree.schema, rows)

    # -- dispatcher ---------------------------------------------------------------

    def _eval(self, node: A.Node, inputs: Mapping[str, ColumnTable]) -> list[Row]:
        method = getattr(self, f"_eval_{_snake(node.op_name)}", None)
        if method is None:
            raise ExecutionError(f"reference interpreter: no rule for {node.op_name}")
        return method(node, inputs)

    # -- leaves ---------------------------------------------------------------------

    def _eval_scan(self, node: A.Scan, inputs: Mapping[str, ColumnTable]) -> list[Row]:
        return list(self.resolve_scan(node, inputs).iter_dicts())

    def _eval_inline_table(self, node: A.InlineTable, inputs) -> list[Row]:
        names = node.table_schema.names
        return [dict(zip(names, row)) for row in node.rows]

    def _eval_loop_var(self, node: A.LoopVar, inputs) -> list[Row]:
        raise ExecutionError(
            f"unbound LoopVar({node.name!r}); Iterate substitutes these before "
            f"evaluating the body"
        )

    # -- relational ------------------------------------------------------------------

    def _eval_filter(self, node: A.Filter, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        return [r for r in rows if eval_row(node.predicate, r) is True]

    def _eval_project(self, node: A.Project, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        names = node.names
        return [{n: r[n] for n in names} for r in rows]

    def _eval_extend(self, node: A.Extend, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        out = []
        for r in rows:
            new = dict(r)
            for name, expr in zip(node.names, node.exprs):
                new[name] = eval_row(expr, r)  # exprs see the input row only
            out.append(new)
        return out

    def _eval_rename(self, node: A.Rename, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        mapping = dict(node.mapping)
        return [{mapping.get(k, k): v for k, v in r.items()} for r in rows]

    def _eval_join(self, node: A.Join, inputs) -> list[Row]:
        left = self._eval(node.left, inputs)
        right = self._eval(node.right, inputs)
        lkeys = [l for l, _ in node.on]
        rkeys = [r for _, r in node.on]
        right_rest = [
            n for n in node.right.schema.names if n not in set(rkeys)
        ]

        def matches(lrow: Row, rrow: Row) -> bool:
            for lk, rk in node.on:
                lv, rv = lrow[lk], rrow[rk]
                if lv is None or rv is None or lv != rv:
                    return False
            return True

        out: list[Row] = []
        if node.how == "semi":
            return [l for l in left if any(matches(l, r) for r in right)]
        if node.how == "anti":
            return [l for l in left if not any(matches(l, r) for r in right)]

        matched_right: set[int] = set()
        for lrow in left:
            hit = False
            for ridx, rrow in enumerate(right):
                if matches(lrow, rrow):
                    hit = True
                    matched_right.add(ridx)
                    combined = dict(lrow)
                    for n in right_rest:
                        combined[n] = rrow[n]
                    out.append(combined)
            if not hit and node.how in ("left", "full"):
                combined = dict(lrow)
                for n in right_rest:
                    combined[n] = None
                out.append(combined)
        if node.how == "full":
            left_names = node.left.schema.names
            for ridx, rrow in enumerate(right):
                if ridx not in matched_right:
                    combined = {n: None for n in left_names}
                    for n in right_rest:
                        combined[n] = rrow[n]
                    out.append(combined)
        return out

    def _eval_product(self, node: A.Product, inputs) -> list[Row]:
        left = self._eval(node.left, inputs)
        right = self._eval(node.right, inputs)
        return [{**l, **r} for l in left for r in right]

    def _eval_aggregate(self, node: A.Aggregate, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        return _group_aggregate(rows, node.group_by, node.aggs,
                                global_if_empty=not node.group_by)

    def _eval_sort(self, node: A.Sort, inputs) -> list[Row]:
        rows = list(self._eval(node.child, inputs))
        # stable multi-key sort: apply keys right-to-left; nulls are smallest.
        for key, asc in reversed(list(zip(node.keys, node.ascending))):
            rows.sort(key=lambda r: _null_key(r[key]), reverse=not asc)
        return rows

    def _eval_limit(self, node: A.Limit, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        return rows[node.offset:node.offset + node.count]

    def _eval_reverse(self, node: A.Reverse, inputs) -> list[Row]:
        return list(reversed(self._eval(node.child, inputs)))

    def _eval_distinct(self, node: A.Distinct, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        names = node.child.schema.names
        seen: set[tuple] = set()
        out = []
        for r in rows:
            key = tuple(r[n] for n in names)
            if key not in seen:
                seen.add(key)
                out.append(r)
        return out

    def _eval_union(self, node: A.Union, inputs) -> list[Row]:
        out_names = node.schema.names
        left = self._eval(node.left, inputs)
        right = self._eval(node.right, inputs)
        return [{n: r[n] for n in out_names} for r in left + right]

    def _eval_intersect(self, node: A.Intersect, inputs) -> list[Row]:
        names = node.schema.names
        right_keys = {
            tuple(r[n] for n in names) for r in self._eval(node.right, inputs)
        }
        seen: set[tuple] = set()
        out = []
        for r in self._eval(node.left, inputs):
            key = tuple(r[n] for n in names)
            if key in right_keys and key not in seen:
                seen.add(key)
                out.append({n: r[n] for n in names})
        return out

    def _eval_except(self, node: A.Except, inputs) -> list[Row]:
        names = node.schema.names
        right_keys = {
            tuple(r[n] for n in names) for r in self._eval(node.right, inputs)
        }
        seen: set[tuple] = set()
        out = []
        for r in self._eval(node.left, inputs):
            key = tuple(r[n] for n in names)
            if key not in right_keys and key not in seen:
                seen.add(key)
                out.append({n: r[n] for n in names})
        return out

    # -- dimension-aware ----------------------------------------------------------------

    def _eval_as_dims(self, node: A.AsDims, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        _check_dimension_key(rows, node.dims, "AsDims")
        return rows

    def _eval_slice_dims(self, node: A.SliceDims, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        out = rows
        for dim, lo, hi in node.bounds:
            out = [r for r in out if lo <= r[dim] <= hi]
        return out

    def _eval_shift_dim(self, node: A.ShiftDim, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        return [{**r, node.dim: r[node.dim] + node.offset} for r in rows]

    def _eval_regrid(self, node: A.Regrid, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        factors = dict(node.factors)
        coarsened = [
            {**r, **{d: r[d] // f for d, f in factors.items()}}
            for r in rows
        ]
        dims = node.child.schema.dimension_names
        return _group_aggregate(coarsened, dims, node.aggs, global_if_empty=False)

    def _eval_window(self, node: A.Window, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        dims = node.child.schema.dimension_names
        radii = dict(node.sizes)
        out = []
        for center in rows:
            members = []
            for other in rows:
                ok = True
                for d in dims:
                    r = radii.get(d)
                    if r is None:
                        if other[d] != center[d]:
                            ok = False
                            break
                    elif abs(other[d] - center[d]) > r:
                        ok = False
                        break
                if ok:
                    members.append(other)
            result = {d: center[d] for d in dims}
            for spec in node.aggs:
                result[spec.name] = _agg_over(members, spec)
            out.append(result)
        return out

    def _eval_reduce_dims(self, node: A.ReduceDims, inputs) -> list[Row]:
        rows = self._eval(node.child, inputs)
        dims = node.child.schema.dimension_names
        keep = [d for d in dims if d in set(node.keep)]
        return _group_aggregate(rows, tuple(keep), node.aggs,
                                global_if_empty=not keep)

    def _eval_transpose_dims(self, node: A.TransposeDims, inputs) -> list[Row]:
        return self._eval(node.child, inputs)

    def _eval_mat_mul(self, node: A.MatMul, inputs) -> list[Row]:
        left = self._eval(node.left, inputs)
        right = self._eval(node.right, inputs)
        li, lk, lval = _matrix_names(node.left.schema)
        rk, rj, rval = _matrix_names(node.right.schema)
        out_schema = node.schema
        out_i, out_j = out_schema.dimension_names
        out_v = out_schema.value_names[0]

        by_k: dict[int, list[tuple[int, Any]]] = {}
        for r in right:
            by_k.setdefault(r[rk], []).append((r[rj], r[rval]))
        acc: dict[tuple[int, int], Any] = {}
        for l in left:
            lv = l[lval]
            if lv is None:
                continue
            for j, rv in by_k.get(l[lk], ()):
                if rv is None:
                    continue
                key = (l[li], j)
                acc[key] = acc.get(key, 0) + lv * rv
        return [
            {out_i: i, out_j: j, out_v: v} for (i, j), v in acc.items()
        ]

    def _eval_cell_join(self, node: A.CellJoin, inputs) -> list[Row]:
        left = self._eval(node.left, inputs)
        right = self._eval(node.right, inputs)
        dims = node.schema.dimension_names
        lvals = node.left.schema.value_names
        rvals = node.right.schema.value_names
        index: dict[tuple, list[Row]] = {}
        for r in right:
            index.setdefault(tuple(r[d] for d in dims), []).append(r)
        out = []
        for l in left:
            key = tuple(l[d] for d in dims)
            for r in index.get(key, ()):
                row = {d: l[d] for d in dims}
                for n in lvals:
                    row[n] = l[n]
                for n in rvals:
                    row[n] = r[n]
                out.append(row)
        return out

    # -- control iteration ------------------------------------------------------------------

    def _eval_iterate(self, node: A.Iterate, inputs) -> list[Row]:
        state_schema = node.init.schema
        state = self._eval(node.init, inputs)
        for _ in range(node.max_iter):
            bound = substitute_loop_var(
                node.body, node.var, _inline(state_schema, state)
            )
            new_state = self._eval(bound, inputs)
            if _converged(node.stop, state_schema, state, new_state):
                return new_state
            state = new_state
        if node.stop.value_attr is not None and node.strict:
            raise ConvergenceError(
                f"Iterate did not converge within {node.max_iter} iterations"
            )
        return state


# -- shared helpers ------------------------------------------------------------------------


def _snake(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


def _null_key(value: Any) -> tuple:
    """Sort key making nulls the smallest value of any type."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    return (1, value)


def _inline(schema: Schema, rows: list[Row]) -> A.InlineTable:
    names = schema.names
    return A.InlineTable(schema, tuple(tuple(r[n] for n in names) for r in rows))


def _agg_over(rows: list[Row], spec: A.AggSpec) -> Any:
    if spec.arg is None:
        return apply_agg("count", rows, count_rows=True)
    values = [eval_row(spec.arg, r) for r in rows]
    return apply_agg(spec.func, values)


def _group_aggregate(
    rows: list[Row],
    keys: tuple[str, ...],
    aggs: tuple[A.AggSpec, ...],
    *,
    global_if_empty: bool,
) -> list[Row]:
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for r in rows:
        key = tuple(r[k] for k in keys)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(r)
    if not rows and global_if_empty:
        groups[()] = []
        order.append(())
    out = []
    for key in order:
        members = groups[key]
        result: Row = dict(zip(keys, key))
        for spec in aggs:
            result[spec.name] = _agg_over(members, spec)
        out.append(result)
    return out


def _check_dimension_key(rows: list[Row], dims: tuple[str, ...], op: str) -> None:
    """Dimensions may not be null and must form a key (array coordinates)."""
    seen: set[tuple] = set()
    for r in rows:
        coord = tuple(r[d] for d in dims)
        if any(c is None for c in coord):
            raise ExecutionError(f"{op}: null in dimension coordinate {coord}")
        if coord in seen:
            raise ExecutionError(
                f"{op}: duplicate dimension coordinate {coord}; dimensions "
                f"must uniquely identify cells"
            )
        seen.add(coord)


def _matrix_names(schema: Schema) -> tuple[str, str, str]:
    d0, d1 = schema.dimension_names
    return d0, d1, schema.value_names[0]


def _converged(
    stop: A.Convergence,
    schema: Schema,
    old: list[Row],
    new: list[Row],
) -> bool:
    if stop.value_attr is None:
        return False
    dims = schema.dimension_names
    old_map = {tuple(r[d] for d in dims): r[stop.value_attr] for r in old}
    new_map = {tuple(r[d] for d in dims): r[stop.value_attr] for r in new}
    if set(old_map) != set(new_map):
        return False
    deltas = []
    for key, old_v in old_map.items():
        new_v = new_map[key]
        if old_v is None or new_v is None:
            if old_v is not new_v:
                return False
            deltas.append(0.0)
        else:
            deltas.append(abs(float(new_v) - float(old_v)))
    if not deltas:
        return True
    if stop.norm == "linf":
        delta = max(deltas)
    else:
        delta = math.fsum(deltas)
    return delta <= stop.tolerance

"""The provider framework — the paper's LINQ-Provider analog.

A :class:`Provider` is a back-end server: it owns datasets, declares which
algebra operators it can execute (its *capabilities*), accepts whole
expression trees, optimizes/executes them with its own engine, and returns a
:class:`~repro.storage.table.ColumnTable`.

``accepts(tree)`` is the coverage check the federation planner uses when
assigning plan fragments to servers (desiderata 1 and 2).  ``execute`` must
raise :class:`~repro.core.errors.TranslationError` for trees outside the
declared capabilities — never silently fall back — so coverage claims stay
honest.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core import algebra as A
from ..core.errors import PlanningError, TranslationError
from ..core.schema import Schema
from ..exec.physical.base import PhysPlan
from ..storage.table import ColumnTable


@dataclass
class ProviderStats:
    """Execution counters a provider accumulates across queries."""

    queries: int = 0
    operators: int = 0
    rows_out: int = 0
    ops_by_name: dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds spent inside ``execute`` (all stages)
    seconds: float = 0.0
    #: per-stage wall-clock breakdown ("validate", "execute", ...)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: engine-internal physical-operator breakdown ("join", "aggregate");
    #: these seconds are *inside* the "execute" stage, not in addition to it
    engine_stage_seconds: dict[str, float] = field(default_factory=dict)

    def record(self, tree: A.Node, result: ColumnTable) -> None:
        self.queries += 1
        for node in tree.walk():
            self.operators += 1
            self.ops_by_name[node.op_name] = self.ops_by_name.get(node.op_name, 0) + 1
        self.rows_out += result.num_rows

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time for one named execution stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.seconds += seconds

    def record_engine_stage(self, stage: str, seconds: float) -> None:
        """Accumulate engine-internal operator time (a subset of "execute").

        Does not touch ``seconds``: the same wall time already entered via
        :meth:`record_stage`, so adding it again would double-count.
        """
        self.engine_stage_seconds[stage] = (
            self.engine_stage_seconds.get(stage, 0.0) + seconds
        )

    def reset(self) -> None:
        self.queries = 0
        self.operators = 0
        self.rows_out = 0
        self.ops_by_name.clear()
        self.seconds = 0.0
        self.stage_seconds.clear()
        self.engine_stage_seconds.clear()


class Provider(abc.ABC):
    """Abstract back-end server."""

    #: Operator class names this provider can execute.
    capabilities: frozenset[str] = frozenset()

    def __init__(self, name: str):
        self.name = name
        self._datasets: dict[str, ColumnTable] = {}
        self._table_stats: dict[str, "TableStats"] = {}
        self.stats = ProviderStats()

    # -- dataset management ----------------------------------------------------

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        """Load (or replace) a named dataset on this server."""
        self._datasets[name] = table
        self._table_stats.pop(name, None)  # recompute on next request

    def table_stats(self, name: str) -> "TableStats | None":
        """Shared statistics for one stored dataset (None = unknown).

        Computed lazily from the stored table and cached until the dataset
        is re-registered.  Engine-backed providers with richer metadata
        (the relational catalog's dictionary/zone-map statistics) override
        this to serve their precomputed numbers.
        """
        if name not in self._datasets:
            return None
        found = self._table_stats.get(name)
        if found is None:
            from ..opt.stats import TableStats

            found = TableStats.of(self._datasets[name])
            self._table_stats[name] = found
        return found

    def dataset(self, name: str) -> ColumnTable:
        try:
            return self._datasets[name]
        except KeyError:
            raise PlanningError(
                f"provider {self.name!r} has no dataset {name!r}; "
                f"has {sorted(self._datasets)}"
            ) from None

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets

    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    def dataset_schema(self, name: str) -> Schema:
        return self.dataset(name).schema

    # -- capability checking ------------------------------------------------------

    def supports(self, node: A.Node) -> bool:
        """Whether this provider can execute one operator.

        The default checks the class-level capability set; subclasses may
        refine with per-node constraints (e.g. an engine that only joins on
        single keys).
        """
        return node.op_name in self.capabilities

    def accepts(self, tree: A.Node) -> bool:
        """Whether this provider can execute the whole tree (desideratum 2)."""
        return all(self.supports(node) for node in tree.walk())

    def cost_factor(self, node: A.Node) -> float:
        """Relative speed of this server on one operator (lower = faster).

        The federation planner multiplies its abstract operator cost by this
        factor, which is how "server X has a *native* implementation of Y"
        enters planning — e.g. the linear-algebra server advertises a tiny
        factor for MatMul while the relational server, which can only run it
        as join+aggregate, advertises a large one.
        """
        return 1.0

    def unsupported(self, tree: A.Node) -> list[str]:
        """Operator names in ``tree`` this provider cannot run (for errors)."""
        return sorted({
            node.op_name for node in tree.walk() if not self.supports(node)
        })

    def _check(self, tree: A.Node) -> None:
        bad = self.unsupported(tree)
        if bad:
            raise TranslationError(
                f"provider {self.name!r} cannot execute operators {bad}"
            )

    # -- execution -------------------------------------------------------------------

    def execute(
        self,
        tree: A.Node,
        inputs: Mapping[str, ColumnTable] | None = None,
    ) -> ColumnTable:
        """Execute a whole expression tree and return the result table.

        ``inputs`` supplies tables for :class:`Scan` leaves whose names are
        not local datasets — the federation executor uses names starting with
        ``"@"`` for fragment inputs.  Wall-clock time per stage accumulates
        in ``stats.stage_seconds`` ("validate" / "execute").
        """
        started = time.perf_counter()
        self._check(tree)
        tree.schema  # full validation before any work
        validated = time.perf_counter()
        self.stats.record_stage("validate", validated - started)
        result = self._run(tree, dict(inputs or {}))
        self.stats.record_stage("execute", time.perf_counter() - validated)
        self.stats.record(tree, result)
        return result

    @abc.abstractmethod
    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        """Engine-specific execution; called after capability/type checks."""

    # -- physical plans -----------------------------------------------------------

    def lower(self, tree: A.Node) -> PhysPlan | None:
        """The physical plan this provider would execute ``tree`` with.

        ``None`` means the provider executes logical trees directly (the
        reference interpreter).  The federation planner attaches lowered
        plans to fragments so ``explain(physical=True)`` and the cost model
        can inspect per-fragment physical decisions; engine-backed
        providers cache lowering, so this is cheap for repeat shapes.
        """
        return None

    def _record_engine_stages(self, stage_seconds: Mapping[str, float]) -> None:
        """Fold one query's physical-stage timings into this provider's stats.

        The physical executor owns per-query stage timings (they arrive in
        its :class:`~repro.exec.physical.base.ExecOutcome`), so providers
        record deltas directly — no before/after diffing of cumulative
        engine counters.
        """
        for stage, seconds in stage_seconds.items():
            if seconds > 0.0:
                self.stats.record_engine_stage(stage, seconds)

    def perf_snapshot(self) -> dict[str, object]:
        """Uniform per-provider performance counters (benches, diagnostics).

        Base fields come from :class:`ProviderStats`; engine-backed
        subclasses add engine-specific counters via :meth:`_perf_extra`.
        """
        snapshot: dict[str, object] = {
            "queries": self.stats.queries,
            "seconds": self.stats.seconds,
            "stage_seconds": dict(self.stats.stage_seconds),
            "engine_stage_seconds": dict(self.stats.engine_stage_seconds),
        }
        snapshot.update(self._perf_extra())
        return snapshot

    def _perf_extra(self) -> dict[str, object]:
        """Engine-specific additions to :meth:`perf_snapshot`."""
        return {}

    def resolve_scan(self, node: A.Scan, inputs: Mapping[str, ColumnTable]) -> ColumnTable:
        if node.name in inputs:
            return inputs[node.name]
        return self.dataset(node.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def capability_names(*ops: Iterable[type[A.Node]] | type[A.Node]) -> frozenset[str]:
    """Build a capability set from operator classes (or iterables of them)."""
    out: set[str] = set()
    for item in ops:
        if isinstance(item, type):
            out.add(item.__name__)
        else:
            out.update(cls.__name__ for cls in item)
    return frozenset(out)

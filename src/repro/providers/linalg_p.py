"""Linear-algebra provider: the ScaLAPACK-like back end.

A deliberately narrow server: it executes ``MatMul`` chains and transposes
over blocked dense matrices — fast — and nothing else.  This narrowness is
what the paper's desiderata are about: the federation planner must route the
matrix part of a query here (interoperation), and the intent recognizer must
keep matrix multiplies recognizable so this server can claim them.

Beyond the algebra surface, the underlying kernels
(:mod:`repro.linalg.kernels`) expose solve/LU/norms/power-iteration as a
library API, the way a real linear-algebra service would.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core import algebra as A
from ..core import serialize
from ..exec.physical.base import PhysPlan, run_plan
from ..linalg.blocked import DEFAULT_BLOCK, BlockedMatrix
from ..storage.table import ColumnTable
from .base import Provider, capability_names


class LinalgProvider(Provider):
    """Blocked dense linear-algebra server."""

    capabilities = capability_names(
        A.Scan, A.InlineTable, A.MatMul, A.TransposeDims, A.Rename,
    )

    PLAN_CACHE_CAP = 128

    def __init__(self, name: str, block_size: int = DEFAULT_BLOCK):
        super().__init__(name)
        self.block_size = block_size
        self._matrices: dict[str, BlockedMatrix] = {}
        self._plans: OrderedDict[tuple, PhysPlan] = OrderedDict()
        # bumped on re-registration so cached plans with stale row
        # estimates stamped into their props invalidate
        self._stats_version = 0

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        super().register_dataset(name, table)
        self._matrices.pop(name, None)
        self._stats_version += 1

    def matrix(self, name: str) -> BlockedMatrix:
        """The blocked form of a registered matrix dataset (cached)."""
        if name not in self._matrices:
            self._matrices[name] = BlockedMatrix.from_table(
                self.dataset(name), self.block_size
            )
        return self._matrices[name]

    def cost_factor(self, node: A.Node) -> float:
        # native blocked kernels: this is the server's whole reason to exist
        if isinstance(node, (A.MatMul, A.TransposeDims)):
            return 0.05
        return 1.0

    def supports(self, node: A.Node) -> bool:
        if not super().supports(node):
            return False
        if isinstance(node, (A.Scan, A.InlineTable)):
            schema = node.schema
            return len(schema.dimension_names) == 2 and len(schema.value_names) == 1
        if isinstance(node, (A.TransposeDims, A.Rename)):
            return len(node.child.schema.dimension_names) == 2
        return True

    def lower(self, tree: A.Node) -> PhysPlan:
        """The cached physical plan this provider would execute ``tree`` with."""
        key = (serialize.dumps(tree), self._stats_version)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        from ..linalg.lowering import lower_linalg

        plan = lower_linalg(tree, self.block_size, self.table_stats)
        self._plans[key] = plan
        while len(self._plans) > self.PLAN_CACHE_CAP:
            self._plans.popitem(last=False)
        return plan

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        def resolve(name: str):
            if name in inputs:
                return inputs[name]  # PhysMatrixSource blocks it on entry
            return self.matrix(name)  # pre-blocked and cached

        plan = self.lower(tree)
        outcome = run_plan(plan, resolve)
        self._record_engine_stages(outcome.stage_seconds)
        return outcome.value

"""Linear-algebra provider: the ScaLAPACK-like back end.

A deliberately narrow server: it executes ``MatMul`` chains and transposes
over blocked dense matrices — fast — and nothing else.  This narrowness is
what the paper's desiderata are about: the federation planner must route the
matrix part of a query here (interoperation), and the intent recognizer must
keep matrix multiplies recognizable so this server can claim them.

Beyond the algebra surface, the underlying kernels
(:mod:`repro.linalg.kernels`) expose solve/LU/norms/power-iteration as a
library API, the way a real linear-algebra service would.
"""

from __future__ import annotations

from ..core import algebra as A
from ..core.errors import TranslationError
from ..linalg import kernels
from ..linalg.blocked import DEFAULT_BLOCK, BlockedMatrix
from ..storage.table import ColumnTable
from .base import Provider, capability_names


class LinalgProvider(Provider):
    """Blocked dense linear-algebra server."""

    capabilities = capability_names(
        A.Scan, A.InlineTable, A.MatMul, A.TransposeDims, A.Rename,
    )

    def __init__(self, name: str, block_size: int = DEFAULT_BLOCK):
        super().__init__(name)
        self.block_size = block_size
        self._matrices: dict[str, BlockedMatrix] = {}

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        super().register_dataset(name, table)
        self._matrices.pop(name, None)

    def matrix(self, name: str) -> BlockedMatrix:
        """The blocked form of a registered matrix dataset (cached)."""
        if name not in self._matrices:
            self._matrices[name] = BlockedMatrix.from_table(
                self.dataset(name), self.block_size
            )
        return self._matrices[name]

    def cost_factor(self, node: A.Node) -> float:
        # native blocked kernels: this is the server's whole reason to exist
        if isinstance(node, (A.MatMul, A.TransposeDims)):
            return 0.05
        return 1.0

    def supports(self, node: A.Node) -> bool:
        if not super().supports(node):
            return False
        if isinstance(node, (A.Scan, A.InlineTable)):
            schema = node.schema
            return len(schema.dimension_names) == 2 and len(schema.value_names) == 1
        if isinstance(node, (A.TransposeDims, A.Rename)):
            return len(node.child.schema.dimension_names) == 2
        return True

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        result, names = self._eval(tree, inputs)
        table = result.to_table(*names)
        # re-attach the tree's schema (same names; order/tags may differ).
        # Note the dense-semantics caveat: exact-zero cells are treated as
        # absent by this server.
        return ColumnTable(tree.schema, table.columns)

    def _eval(
        self, node: A.Node, inputs: dict[str, ColumnTable]
    ) -> tuple[BlockedMatrix, tuple[str, str, str]]:
        if isinstance(node, A.Scan):
            schema = node.schema
            names = (*schema.dimension_names, schema.value_names[0])
            if node.name in inputs:
                return (
                    BlockedMatrix.from_table(inputs[node.name], self.block_size),
                    names,
                )
            return self.matrix(node.name), names
        if isinstance(node, A.InlineTable):
            schema = node.schema
            table = ColumnTable.from_rows(schema, node.rows)
            names = (*schema.dimension_names, schema.value_names[0])
            return BlockedMatrix.from_table(table, self.block_size), names
        if isinstance(node, A.MatMul):
            left, lnames = self._eval(node.left, inputs)
            right, rnames = self._eval(node.right, inputs)
            out = kernels.matmul(left, right)
            return out, (lnames[0], rnames[1], lnames[2])
        if isinstance(node, A.TransposeDims):
            child, names = self._eval(node.child, inputs)
            if node.order == node.child.schema.dimension_names:
                return child, names
            return kernels.transpose(child), (names[1], names[0], names[2])
        if isinstance(node, A.Rename):
            child, names = self._eval(node.child, inputs)
            mapping = dict(node.mapping)
            return child, tuple(mapping.get(n, n) for n in names)
        raise TranslationError(
            f"linalg provider cannot execute {node.op_name}"
        )

"""Back-end providers: the framework's LINQ-Provider analogs.

Each provider is a self-contained server with its own engine, declared
capabilities, and datasets:

* :class:`ReferenceProvider` — naive interpreter covering the whole algebra
  (the semantics oracle).
* :class:`RelationalProvider` — columnar relational engine (SQLServer-like).
* :class:`ArrayProvider` — chunked n-d array engine (SciDB-like).
* :class:`LinalgProvider` — blocked dense linear algebra (ScaLAPACK-like).
* :class:`GraphProvider` — iterative graph analytics with native PageRank.
"""

from .array_p import ArrayProvider
from .base import Provider, ProviderStats, capability_names
from .graph_p import GraphProvider
from .linalg_p import LinalgProvider
from .reference import ReferenceProvider
from .relational_p import RelationalProvider

__all__ = [
    "ArrayProvider",
    "GraphProvider",
    "LinalgProvider",
    "Provider",
    "ProviderStats",
    "ReferenceProvider",
    "RelationalProvider",
    "capability_names",
]

"""Array provider: the SciDB-like back end.

Wraps :class:`repro.array.engine.ArrayEngine` in the provider protocol.
Datasets are chunked once at registration; queries then run entirely over
chunked storage.  Capabilities cover the dimension-aware operators plus
cell-wise filter/extend/project/rename and control iteration — but not
arbitrary joins, group-bys, sorts or set operations, which is this engine's
deliberate coverage gap.
"""

from __future__ import annotations

from ..array.chunked import ChunkedArray
from ..array.engine import ArrayEngine, ArrayEngineOptions
from ..core import algebra as A
from ..storage.table import ColumnTable
from .base import Provider, capability_names


class ArrayProvider(Provider):
    """Chunked n-dimensional array server."""

    capabilities = capability_names(
        A.Scan, A.InlineTable, A.LoopVar,
        A.AsDims, A.SliceDims, A.ShiftDim, A.Regrid, A.Window, A.ReduceDims,
        A.TransposeDims, A.MatMul, A.CellJoin,
        A.Filter, A.Extend, A.Project, A.Rename,
        A.Iterate,
    )

    def __init__(self, name: str, options: ArrayEngineOptions | None = None):
        super().__init__(name)
        self.engine = ArrayEngine(options, stats_source=self.table_stats)
        self._chunked: dict[str, ChunkedArray] = {}

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        super().register_dataset(name, table)
        self.engine.stats_version += 1  # invalidate plans with stale estimates
        if table.schema.dimensions:
            self._chunked[name] = ChunkedArray.from_table(
                table, self.engine.chunk_side
            )
        else:
            self._chunked.pop(name, None)

    def chunked(self, name: str) -> ChunkedArray:
        """The chunked form of a registered dimensioned dataset."""
        if name not in self._chunked:
            self.dataset(name)  # raises PlanningError if truly unknown
            self._chunked[name] = ChunkedArray.from_table(
                self.dataset(name), self.engine.chunk_side
            )
        return self._chunked[name]

    def cost_factor(self, node: A.Node) -> float:
        if isinstance(node, (A.Window, A.Regrid, A.SliceDims, A.ShiftDim)):
            return 0.3  # chunked-native operators
        if isinstance(node, A.MatMul):
            return 0.5  # dense, but not blocked like the linalg server
        return 1.0

    def supports(self, node: A.Node) -> bool:
        if not super().supports(node):
            return False
        if isinstance(node, A.Project):
            # an array projection must keep every dimension
            dims = node.child.schema.dimension_names
            return all(d in node.names for d in dims)
        if isinstance(node, (A.Filter, A.Extend, A.SliceDims, A.ShiftDim,
                             A.Regrid, A.Window, A.ReduceDims,
                             A.TransposeDims)):
            return bool(node.child.schema.dimensions)
        return True

    def lower(self, tree: A.Node):
        """The cached physical plan the engine would execute ``tree`` with."""
        return self.engine.plan_for(tree)

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        def resolve(dataset: str):
            if dataset in inputs:
                return inputs[dataset]
            if dataset in self._chunked:
                return self._chunked[dataset]  # pre-chunked, skip conversion
            return self.dataset(dataset)

        result = self.engine.run(tree, resolve)
        self._record_engine_stages(self.engine.last_stage_seconds)
        return result

"""Graph provider: the graph-analytics back end.

Executes iterative graph algebra (``Iterate`` over join/aggregate bodies)
inside the server — the paper's control-iteration requirement.  Two paths:

* **Native path** — a tree recognized by
  :func:`repro.graph.queries.match_pagerank` runs on CSR adjacency with the
  vectorized kernel in :mod:`repro.graph.algorithms` (``stats_native_hits``
  counts these).
* **Generic path** — anything else within capabilities runs on an embedded
  relational executor, iterating *inside* the provider, so even the generic
  path avoids per-iteration client round-trips.
"""

from __future__ import annotations

import numpy as np

from ..core import algebra as A
from ..graph import queries
from ..graph.algorithms import pagerank as native_pagerank
from ..graph.csr import CSRGraph
from ..relational.engine import RelationalEngine
from ..storage.column import Column
from ..storage.table import ColumnTable
from ..core.types import DType
from .base import Provider, capability_names


class GraphProvider(Provider):
    """Iterative graph-analytics server."""

    capabilities = capability_names(
        A.Scan, A.InlineTable, A.LoopVar, A.Iterate,
        A.Filter, A.Project, A.Extend, A.Rename, A.Join, A.Aggregate,
        A.Union, A.Distinct, A.AsDims, A.Limit, A.Sort,
    )

    def __init__(self, name: str):
        super().__init__(name)
        self.engine = RelationalEngine()
        self.stats_native_hits = 0
        self._csr_cache: dict[str, CSRGraph] = {}

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        super().register_dataset(name, table)
        self._csr_cache.pop(name, None)

    def cost_factor(self, node: A.Node) -> float:
        if isinstance(node, A.Iterate):
            # recognized loops run on CSR; generic ones still iterate in-server
            return 0.05 if queries.match_pagerank(node) else 0.8
        return 1.2  # one-shot relational work is not this server's strength

    def csr(self, name: str, src: str = "src", dst: str = "dst") -> CSRGraph:
        """CSR adjacency for a registered edge table (cached)."""
        if name not in self._csr_cache:
            self._csr_cache[name] = CSRGraph.from_edge_table(
                self.dataset(name), src, dst
            )
        return self._csr_cache[name]

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        def resolve(dataset: str) -> ColumnTable:
            if dataset in inputs:
                return inputs[dataset]
            return self.dataset(dataset)

        if isinstance(tree, A.Iterate):
            native = self._try_native_pagerank(tree, resolve)
            if native is not None:
                self.stats_native_hits += 1
                return native
        return self.engine.run(tree, resolve)

    def _try_native_pagerank(self, tree: A.Iterate, resolve) -> ColumnTable | None:
        spec = queries.match_pagerank(tree)
        if spec is None:
            return None
        # the recognized inputs must themselves be executable here
        if not self.accepts(spec.edges) or not self.accepts(spec.vertices):
            return None
        edges = self.engine.run(spec.edges, resolve)
        vertices = self.engine.run(spec.vertices, resolve)
        vertex_ids = vertices.array("v").astype(np.int64)
        n = len(vertex_ids)
        if n == 0:
            return ColumnTable.empty(tree.schema)
        # teleport must equal (1 - d) / n for the native kernel to apply
        if abs(spec.teleport - (1.0 - spec.damping) / n) > 1e-12:
            return None
        graph = CSRGraph.from_edge_table(edges)
        ranks_compact, _ = native_pagerank(
            graph,
            damping=spec.damping,
            tolerance=spec.tolerance,
            max_iter=spec.max_iter,
        )
        # map compact ids back to the caller's vertex ids; vertices with no
        # edges at all never entered the CSR and hold the teleport rank
        rank_by_id = dict(zip(graph.vertex_ids.tolist(), ranks_compact.tolist()))
        teleport = (1.0 - spec.damping) / n
        ranks = np.array(
            [rank_by_id.get(int(v), teleport) for v in vertex_ids]
        )
        return ColumnTable(tree.schema, {
            "v": Column(DType.INT64, vertex_ids.copy()),
            "rank": Column(DType.FLOAT64, ranks),
        })

"""Graph provider: the graph-analytics back end.

Executes iterative graph algebra (``Iterate`` over join/aggregate bodies)
inside the server — the paper's control-iteration requirement.  Lowering
(:mod:`repro.graph.lowering`) picks between two physical paths:

* **Native path** — a tree recognized by
  :func:`repro.graph.queries.match_pagerank` lowers to
  :class:`~repro.exec.physical.graph.PhysPageRank`, running on CSR
  adjacency with the vectorized kernel (``stats_native_hits`` counts
  native executions).
* **Generic path** — anything else within capabilities lowers through an
  embedded relational engine, iterating *inside* the provider, so even
  the generic path avoids per-iteration client round-trips.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core import algebra as A
from ..core import serialize
from ..exec.physical.base import PhysPlan, run_plan
from ..graph import queries
from ..graph.csr import CSRGraph
from ..relational.engine import RelationalEngine
from ..storage.table import ColumnTable
from .base import Provider, capability_names


class GraphProvider(Provider):
    """Iterative graph-analytics server."""

    capabilities = capability_names(
        A.Scan, A.InlineTable, A.LoopVar, A.Iterate,
        A.Filter, A.Project, A.Extend, A.Rename, A.Join, A.Aggregate,
        A.Union, A.Distinct, A.AsDims, A.Limit, A.Sort,
    )

    PLAN_CACHE_CAP = 128

    def __init__(self, name: str):
        super().__init__(name)
        self.engine = RelationalEngine()
        self.stats_native_hits = 0
        self._csr_cache: dict[str, CSRGraph] = {}
        self._plans: OrderedDict[str, PhysPlan] = OrderedDict()

    def register_dataset(self, name: str, table: ColumnTable) -> None:
        super().register_dataset(name, table)
        self._csr_cache.pop(name, None)

    def cost_factor(self, node: A.Node) -> float:
        if isinstance(node, A.Iterate):
            # recognized loops run on CSR; generic ones still iterate in-server
            return 0.05 if queries.match_pagerank(node) else 0.8
        return 1.2  # one-shot relational work is not this server's strength

    def csr(self, name: str, src: str = "src", dst: str = "dst") -> CSRGraph:
        """CSR adjacency for a registered edge table (cached)."""
        if name not in self._csr_cache:
            self._csr_cache[name] = CSRGraph.from_edge_table(
                self.dataset(name), src, dst
            )
        return self._csr_cache[name]

    def lower(self, tree: A.Node) -> PhysPlan:
        """The cached physical plan this provider would execute ``tree`` with."""
        key = serialize.dumps(tree)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        from ..graph.lowering import lower_graph

        plan = lower_graph(tree, self)
        self._plans[key] = plan
        while len(self._plans) > self.PLAN_CACHE_CAP:
            self._plans.popitem(last=False)
        return plan

    def _run(self, tree: A.Node, inputs: dict[str, ColumnTable]) -> ColumnTable:
        def resolve(dataset: str) -> ColumnTable:
            if dataset in inputs:
                return inputs[dataset]
            return self.dataset(dataset)

        plan = self.lower(tree)
        outcome = run_plan(plan, resolve, counters=self.engine.counters)
        self._record_engine_stages(outcome.stage_seconds)
        return outcome.value
